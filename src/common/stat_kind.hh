/**
 * @file
 * Declared stat semantics: every name a module exports through
 * StatSet::add carries a machine-readable kind, and each kind fixes
 * both the windowing rule (what Simulator::run / TelemetrySink do at a
 * window boundary) and the cross-worker merge op (what the intra-sim
 * parallelism work will do at an epoch barrier).  The vocabulary:
 *
 *   counter            monotone event count.       window: subtract
 *                                                  merge:  sum
 *   rate(num, den)     derived ratio of counters.  window: recompute
 *                      num/den are '+'-joined      merge:  recompute
 *                      sibling counter names,
 *                      resolved under the same
 *                      addAll prefix as the rate.
 *   gauge              point-in-time reading       window: keep-last
 *                      (threshold, color, ...).    merge:  last
 *   quantile           percentile landmark of a    window: keep-last
 *                      cumulative histogram.       merge:  recompute
 *   histogram_summary  derived summary (mean,      window: keep-last
 *                      imbalance) of internal      merge:  recompute
 *                      distribution state.
 *
 * Producers declare their exports once, next to the stats() method,
 * with a SIM_STATS block:
 *
 *   SIM_STATS(Dram,
 *       SIM_STAT("reads", counter),
 *       SIM_STAT("avg_queue_delay", rate("queued_cycles",
 *                                        "reads+writes")),
 *       SIM_STAT_GATED("row_hits", counter, "rowModelOn"));
 *
 * SIM_STAT_GATED names the feature-flag token whose conditional must
 * enclose the add() site.  Declared names may contain '*' wildcards
 * for dynamically composed families ("bank*.accesses"); wildcard
 * entries are analyzer-only and never resolve at runtime.
 *
 * scripts/analyze_stats.py parses the same blocks cross-TU, hard-fails
 * on undeclared/unexported/mis-kinded stats, and emits
 * build/stat_map.json — the windowing/merge contract the sharding PR
 * consumes.  sim/metrics.cc asks StatKindRegistry (never a hard-coded
 * name list) how to window each entry, so declarations and the
 * windowing discipline cannot drift.
 */

#ifndef GARIBALDI_COMMON_STAT_KIND_HH
#define GARIBALDI_COMMON_STAT_KIND_HH

#include <cstddef>
#include <initializer_list>
#include <map>
#include <string>

namespace garibaldi
{

enum class StatKind
{
    Counter,
    Rate,
    Gauge,
    Quantile,
    HistogramSummary,
};

/** What a window boundary does to a stat of a given kind. */
enum class WindowRule
{
    Subtract,  //!< after - before
    Recompute, //!< rebuild from the windowed raw counters
    KeepLast,  //!< report the end-of-window reading
};

/** How per-worker replicas of a stat combine at an epoch barrier. */
enum class MergeOp
{
    Sum,       //!< commutative addition of replicas
    Recompute, //!< rebuild from merged raw counters / histograms
    Last,      //!< designated owner's reading wins
};

WindowRule windowRuleOf(StatKind kind);
MergeOp mergeOpOf(StatKind kind);
const char *statKindName(StatKind kind);
const char *windowRuleName(WindowRule rule);
const char *mergeOpName(MergeOp op);

/** Kind plus the rate raws; built via the statkind:: vocabulary. */
struct StatSemantics
{
    StatKind kind;
    const char *num; //!< Rate only: '+'-joined sibling counter names
    const char *den; //!< Rate only: '+'-joined sibling counter names
};

namespace statkind
{

inline constexpr StatSemantics counter{StatKind::Counter, nullptr,
                                       nullptr};
inline constexpr StatSemantics gauge{StatKind::Gauge, nullptr, nullptr};
inline constexpr StatSemantics quantile{StatKind::Quantile, nullptr,
                                        nullptr};
inline constexpr StatSemantics histogram_summary{
    StatKind::HistogramSummary, nullptr, nullptr};

constexpr StatSemantics
rate(const char *num, const char *den)
{
    return StatSemantics{StatKind::Rate, num, den};
}

} // namespace statkind

/** One declared export: name (may hold '*'), semantics, gate token. */
struct StatDecl
{
    const char *name;
    StatSemantics sem;
    const char *gate; //!< feature-flag token, nullptr when unconditional
};

/**
 * Process-wide name -> semantics table, populated before main() by the
 * const SIM_STATS registrars and read-only afterwards.  Exported names
 * reach windowing with addAll prefixes attached ("llc.hit_rate",
 * "dram.row_hit_rate"), so resolution is exact match first, then the
 * longest declared name that is a '.'-boundary suffix of the query.
 */
class StatKindRegistry
{
  public:
    static const StatKindRegistry &instance();

    /**
     * Declaration governing @p name, or nullptr when no declared name
     * matches.  Wildcard declarations never match here.
     */
    const StatDecl *resolve(const std::string &name) const;

    /**
     * Windowing rule for @p name.  Undeclared names (test-synthesized
     * sets) fall back to the naming convention: a canonical quantile
     * suffix keeps its end-of-window reading, everything else
     * subtracts — exactly the pre-registry behavior.
     */
    WindowRule windowRule(const std::string &name) const;

    /** True when @p name windows as a percentile gauge. */
    bool isQuantile(const std::string &name) const;

    /** Declared (non-wildcard) name count; tests pin a floor. */
    std::size_t size() const;

    /**
     * The canonical quantile suffix set ({_p50, _p90, _p95, _p99} —
     * every landmark QuantileSummary exports), null-terminated.  The
     * undeclared-name fallback and the stat analyzer's suffix/kind
     * rule both key off this one table.
     */
    static const char *const *quantileSuffixes();

  private:
    friend class StatDomainRegistrar;
    static StatKindRegistry &mutableInstance();

    std::map<std::string, StatDecl> decls;
};

/** Registers one producer's SIM_STATS block during static init. */
class StatDomainRegistrar
{
  public:
    StatDomainRegistrar(const char *producer,
                        std::initializer_list<StatDecl> decls);
};

// clang-format off
#define SIM_STAT(name, kind) \
    ::garibaldi::StatDecl{name, ::garibaldi::statkind::kind, nullptr}
#define SIM_STAT_GATED(name, kind, gate) \
    ::garibaldi::StatDecl{name, ::garibaldi::statkind::kind, gate}
#define SIM_STATS(producer, ...) \
    static const ::garibaldi::StatDomainRegistrar \
        kStatDomain_##producer{#producer, {__VA_ARGS__}}
// clang-format on

} // namespace garibaldi

#endif // GARIBALDI_COMMON_STAT_KIND_HH
