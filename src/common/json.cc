#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace garibaldi
{

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::number(double v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.num_ = v;
    return j;
}

JsonValue
JsonValue::string(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.str_ = std::move(v);
    return j;
}

JsonValue
JsonValue::array()
{
    JsonValue j;
    j.kind_ = Kind::Array;
    return j;
}

JsonValue
JsonValue::object()
{
    JsonValue j;
    j.kind_ = Kind::Object;
    return j;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("json: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("json: not a number");
    return num_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("json: not a string");
    return str_;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array)
        fatal("json: push on non-array");
    arr_.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    fatal("json: size of scalar");
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind_ != Kind::Array || i >= arr_.size())
        fatal("json: bad array index ", i);
    return arr_[i];
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object)
        fatal("json: set on non-object");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
JsonValue::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &kv : obj_)
        if (kv.first == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("json: get on non-object");
    for (const auto &kv : obj_)
        if (kv.first == key)
            return kv.second;
    fatal("json: missing key '", key, "'");
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        fatal("json: members of non-object");
    return obj_;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // JSON proper has no non-finite literals; emit the JSON5-style
    // tokens, which our parser (and strtod generally) reads back.
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "Infinity" : "-Infinity";
    // Integers up to 2^53 print exactly; otherwise shortest %.17g that
    // round-trips, trying %.15g and %.16g first to avoid noise digits.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    for (int prec = 15; prec <= 17; ++prec) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(std::size_t(indent) * (depth + 1), ' ')
                   : "";
    const std::string padEnd =
        indent > 0 ? std::string(std::size_t(indent) * depth, ' ') : "";
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += jsonNumber(num_);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += padEnd;
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += '"';
            out += jsonEscape(obj_[i].first);
            out += '"';
            out += colon;
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += padEnd;
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json parse error at offset ", pos, ": ", what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string
    stringLit()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("bad \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                 16));
                pos += 4;
                // Only BMP code points below 0x80 are emitted by our
                // writer; map the rest through UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    value()
    {
        char c = peek();
        if (c == '{') {
            ++pos;
            JsonValue obj = JsonValue::object();
            if (peek() == '}') {
                ++pos;
                return obj;
            }
            while (true) {
                std::string key = stringLit();
                expect(':');
                obj.set(key, value());
                char d = peek();
                ++pos;
                if (d == '}')
                    return obj;
                if (d != ',')
                    fail("expected ',' or '}'");
                skipWs();
            }
        }
        if (c == '[') {
            ++pos;
            JsonValue arr = JsonValue::array();
            if (peek() == ']') {
                ++pos;
                return arr;
            }
            while (true) {
                arr.push(value());
                char d = peek();
                ++pos;
                if (d == ']')
                    return arr;
                if (d != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return JsonValue::string(stringLit());
        skipWs();
        if (consume("true"))
            return JsonValue::boolean(true);
        if (consume("false"))
            return JsonValue::boolean(false);
        if (consume("null"))
            return JsonValue();
        // Number.
        char *end = nullptr;
        double v = std::strtod(s.c_str() + pos, &end);
        if (end == s.c_str() + pos)
            fail("invalid value");
        pos = static_cast<std::size_t>(end - s.c_str());
        return JsonValue::number(v);
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).document();
}

} // namespace garibaldi
