/**
 * @file
 * Small integer-math helpers used throughout the cache geometry code.
 */

#ifndef GARIBALDI_COMMON_INTMATH_HH
#define GARIBALDI_COMMON_INTMATH_HH

#include <cstdint>

#include "common/logging.hh"

namespace garibaldi
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mix the bits of @p x (SplitMix64 finalizer).  Used to build hashed
 * table indexes that spread structured addresses uniformly.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Map a 64-bit hash uniformly onto [0, n) without a division (Lemire's
 * multiply-shift fast range).  Unlike `hash % n` this is unbiased for
 * any @p n and costs one multiply; callers that need the exact low-bit
 * mapping of `% n` for power-of-two @p n should mask instead.
 */
constexpr std::uint32_t
fastRange(std::uint64_t hash, std::uint32_t n)
{
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(hash) * n) >> 64);
}

/** Runtime check that a structure size is a power of two. */
inline void
checkPowerOf2(std::uint64_t v, const char *what)
{
    if (!isPowerOf2(v))
        fatal(what, " must be a power of two, got ", v);
}

} // namespace garibaldi

#endif // GARIBALDI_COMMON_INTMATH_HH
