#include "common/audit.hh"

#include "common/cli.hh"

namespace garibaldi
{
namespace audit
{

void
addAuditArg(ArgParser &args)
{
    args.addFlag("audit",
                 "enable runtime invariant-audit checks (needs a "
                 "-DSIM_AUDIT=ON build)");
}

bool
applyAuditArg(const ArgParser &args)
{
    if (!args.getFlag("audit"))
        return false;
    if (!kCompiledIn)
        fatal("--audit requested but this build compiled the checks "
              "out; reconfigure with -DSIM_AUDIT=ON (the default) to "
              "audit invariants");
    setEnabled(true);
    return true;
}

} // namespace audit
} // namespace garibaldi
