#include "common/histogram.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace garibaldi
{

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width(bucket_width), counts(num_buckets + 1, 0)
{
    if (bucket_width == 0 || num_buckets == 0)
        panic("Histogram requires non-zero geometry");
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = static_cast<std::size_t>(value / width);
    if (idx >= counts.size() - 1)
        idx = counts.size() - 1;
    counts[idx] += weight;
    total += weight;
    sum += static_cast<double>(value) * static_cast<double>(weight);
    maxSeen = std::max(maxSeen, value);
}

double
Histogram::mean() const
{
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (total == 0)
        return 0;
    if (p < 0)
        p = 0;
    if (p > 1)
        p = 1;
    std::uint64_t target =
        static_cast<std::uint64_t>(p * static_cast<double>(total));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        if (running > target)
            return bucketLow(i);
    }
    return bucketLow(counts.size() - 1);
}

QuantileSummary
Histogram::quantiles() const
{
    QuantileSummary q;
    q.count = total;
    q.mean = mean();
    q.p50 = percentile(0.5);
    q.p90 = percentile(0.9);
    q.p95 = percentile(0.95);
    q.p99 = percentile(0.99);
    q.max = maxSeen;
    return q;
}

void
Histogram::clear()
{
    std::fill(counts.begin(), counts.end(), 0);
    total = 0;
    sum = 0;
    maxSeen = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.width != width || other.counts.size() != counts.size())
        panic("Histogram::merge geometry mismatch");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sum += other.sum;
    maxSeen = std::max(maxSeen, other.maxSeen);
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << total << " mean=" << mean() << " p50=" << percentile(0.5)
       << " p90=" << percentile(0.9) << " p95=" << percentile(0.95)
       << " p99=" << percentile(0.99) << " max=" << maxSeen;
    return os.str();
}

} // namespace garibaldi
