/**
 * @file
 * Concurrency-readiness sharing annotations: the statically enforced
 * inventory of which simulator state is per-worker, shared-immutable,
 * lock-guarded, or commutatively merged at epoch barriers — the shard
 * boundary contract the intra-sim-parallelism refactor (ROADMAP) will
 * build on.
 *
 * Two annotation families share this header:
 *
 *  - Classification markers (SIM_PER_WORKER, SIM_SHARED_CONST,
 *    SIM_SHARED_SYNC, SIM_EPOCH_MERGED) expand to nothing on every
 *    compiler.  They are machine-readable documentation consumed by
 *    scripts/analyze_sharing.py, which hard-fails CI when a mutable
 *    member of a shard-boundary class lacks one and emits
 *    build/sharing_map.json (class -> member -> classification).
 *  - Capability annotations (SIM_CAPABILITY, SIM_GUARDED_BY,
 *    SIM_REQUIRES, SIM_ACQUIRE, ...) lower to Clang thread-safety
 *    attributes under Clang (-Wthread-safety, scripts/thread_safety.sh)
 *    and to nothing elsewhere, so GCC builds are byte-identical.
 *
 * Vocabulary (one marker per mutable member of a boundary class):
 *
 *   SIM_PER_WORKER      confined to a single owner at any instant —
 *                       thread-confined, or address/bank/channel-
 *                       sharded so exactly one worker touches it
 *                       between epoch barriers.
 *   SIM_SHARED_CONST    written only during construction/setup, then
 *                       read-only; safe to share without locks.
 *   SIM_SHARED_SYNC     internally synchronized primitive (atomic,
 *                       condition variable); safe by construction.
 *   SIM_GUARDED_BY(m)   mutable shared state; every access must hold
 *                       capability m (enforced by Clang).
 *   SIM_EPOCH_MERGED(op) per-worker replica merged at epoch barriers
 *                       with commutative op: sum, min, max, or
 *                       histogram_merge (the reduction discipline of
 *                       the commutative-updates paper, PAPERS.md).
 */

#ifndef GARIBALDI_COMMON_SHARING_HH
#define GARIBALDI_COMMON_SHARING_HH

#include <mutex>

// ---- attribute plumbing ----------------------------------------------
#if defined(__clang__)
#define SIM_TSA_(x) __attribute__((x))
#else
#define SIM_TSA_(x) // no-op outside Clang
#endif

// ---- classification markers (analyzer-only; always no-ops) -----------
#define SIM_PER_WORKER
#define SIM_SHARED_CONST
#define SIM_SHARED_SYNC
#define SIM_EPOCH_MERGED(op)

// ---- Clang thread-safety capabilities --------------------------------
#define SIM_CAPABILITY(x) SIM_TSA_(capability(x))
#define SIM_SCOPED_CAPABILITY SIM_TSA_(scoped_lockable)
#define SIM_GUARDED_BY(x) SIM_TSA_(guarded_by(x))
#define SIM_PT_GUARDED_BY(x) SIM_TSA_(pt_guarded_by(x))
#define SIM_REQUIRES(...) SIM_TSA_(requires_capability(__VA_ARGS__))
#define SIM_ACQUIRE(...) SIM_TSA_(acquire_capability(__VA_ARGS__))
#define SIM_RELEASE(...) SIM_TSA_(release_capability(__VA_ARGS__))
#define SIM_TRY_ACQUIRE(...)                                             \
    SIM_TSA_(try_acquire_capability(__VA_ARGS__))
#define SIM_EXCLUDES(...) SIM_TSA_(locks_excluded(__VA_ARGS__))
#define SIM_NO_THREAD_SAFETY_ANALYSIS SIM_TSA_(no_thread_safety_analysis)

namespace garibaldi
{

/**
 * std::mutex wrapped as a Clang thread-safety capability.  libstdc++'s
 * std::mutex carries no capability attribute, so locking it directly is
 * invisible to -Wthread-safety; every mutex guarding simulator state
 * must be a SimMutex so SIM_GUARDED_BY members are actually enforced.
 */
class SIM_CAPABILITY("mutex") SimMutex
{
  public:
    SimMutex() = default;
    SimMutex(const SimMutex &) = delete;
    SimMutex &operator=(const SimMutex &) = delete;

    void lock() SIM_ACQUIRE() { m.lock(); }
    void unlock() SIM_RELEASE() { m.unlock(); }
    bool try_lock() SIM_TRY_ACQUIRE(true) { return m.try_lock(); }

    /** Underlying mutex for condition-variable wiring. */
    std::mutex &native() { return m; }

  private:
    std::mutex m;
};

/**
 * RAII lock over a SimMutex with relock support (scoped capability).
 * Holds a std::unique_lock so std::condition_variable::wait can run on
 * native(); the analysis treats the capability as held across the wait,
 * which matches the invariant that matters — the guarded predicate is
 * only ever evaluated with the lock held.
 */
class SIM_SCOPED_CAPABILITY SimLock
{
  public:
    explicit SimLock(SimMutex &mu) SIM_ACQUIRE(mu) : lk(mu.native()) {}
    ~SimLock() SIM_RELEASE() {} // unique_lock releases iff still held

    SimLock(const SimLock &) = delete;
    SimLock &operator=(const SimLock &) = delete;

    /** Reacquire after unlock() (e.g. around running a pool task). */
    void lock() SIM_ACQUIRE() { lk.lock(); }
    /** Drop the lock early; the destructor then does nothing. */
    void unlock() SIM_RELEASE() { lk.unlock(); }

    /** The managed lock, for std::condition_variable::wait. */
    std::unique_lock<std::mutex> &native() { return lk; }

  private:
    std::unique_lock<std::mutex> lk;
};

} // namespace garibaldi

#endif // GARIBALDI_COMMON_SHARING_HH
