/**
 * @file
 * Tiny command-line parser shared by benches and examples.  Supports
 * "--name value", "--name=value" and boolean "--flag" forms plus an
 * auto-generated --help.
 */

#ifndef GARIBALDI_COMMON_CLI_HH
#define GARIBALDI_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace garibaldi
{

/** Declarative command-line option parser. */
class ArgParser
{
  public:
    /** @param description one-line program description for --help. */
    explicit ArgParser(std::string description);

    /** Register an integer option with a default. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);

    /** Register a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Register a string option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.  On --help prints usage and exits 0; on malformed
     * input prints an error and exits 1.
     */
    void parse(int argc, const char *const *argv);

    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /**
     * True when the user passed @p name explicitly on the command line
     * (any kind), as opposed to the option sitting at its default.
     * Lets validation distinguish "--trace-sample 0" (an error worth
     * rejecting loudly) from the knob simply being off.
     */
    bool wasSet(const std::string &name) const;

  private:
    enum class Kind { Int, Double, String, Flag };

    struct Option
    {
        std::string name;
        Kind kind;
        std::string help;
        std::string value; // textual; parsed on get
        std::string def;
        bool set = false;  // appeared on the command line
    };

    const Option *find(const std::string &name, Kind kind) const;
    Option *findMutable(const std::string &name);
    void usage(const char *prog) const;

    std::string description;
    std::vector<Option> options;
};

} // namespace garibaldi

#endif // GARIBALDI_COMMON_CLI_HH
