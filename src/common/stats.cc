#include "common/stats.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace garibaldi
{

void
StatSet::add(const std::string &name, double value)
{
    auto it = index.find(name);
    if (it != index.end()) {
        ordered[it->second].second = value;
        return;
    }
    index.emplace(name, ordered.size());
    ordered.emplace_back(name, value);
}

void
StatSet::addAll(const std::string &prefix, const StatSet &other)
{
    for (const auto &[name, value] : other.ordered)
        add(prefix + name, value);
}

double
StatSet::get(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        fatal("StatSet: unknown stat '", name, "'");
    return ordered[it->second].second;
}

bool
StatSet::has(const std::string &name) const
{
    return index.count(name) != 0;
}

std::string
StatSet::toString() const
{
    std::size_t w = 0;
    for (const auto &[name, value] : ordered)
        w = std::max(w, name.size());
    std::ostringstream os;
    for (const auto &[name, value] : ordered) {
        os << std::left << std::setw(static_cast<int>(w) + 2) << name
           << std::setprecision(6) << value << "\n";
    }
    return os.str();
}

} // namespace garibaldi
