/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of the simulator (workload walks, sampled
 * policies, dependence draws) derives from Pcg32 streams seeded from
 * (workload, instance, purpose) tuples, so that any experiment replays
 * bit-identically.
 */

#ifndef GARIBALDI_COMMON_RNG_HH
#define GARIBALDI_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "common/sharing.hh"

namespace garibaldi
{

/**
 * PCG32 (XSH-RR): small, fast, statistically solid generator with an
 * explicit stream id, ideal for reproducible simulation.
 */
class Pcg32
{
  public:
    /** Construct from a seed and stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Uniform 64-bit value. */
    std::uint64_t next64();

  private:
    // An Rng stream belongs to exactly one core/workload; sharing one
    // across workers would make draw order schedule-dependent.
    SIM_PER_WORKER std::uint64_t state;
    SIM_PER_WORKER std::uint64_t inc;
};

/**
 * Zipf(alpha) sampler over [0, n) with O(1) amortized draws via the
 * rejection-inversion method of Hormann & Derflinger.  alpha == 0
 * degenerates to uniform.
 */
class ZipfSampler
{
  public:
    /**
     * @param n population size (> 0)
     * @param alpha skew exponent (>= 0); larger = more skewed
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the most popular element. */
    std::uint64_t sample(Pcg32 &rng) const;

    std::uint64_t population() const { return n; }
    double skew() const { return alpha; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    SIM_SHARED_CONST std::uint64_t n;
    SIM_SHARED_CONST double alpha;
    SIM_SHARED_CONST double hx0;
    SIM_SHARED_CONST double hxn;
    SIM_SHARED_CONST double s;
};

/**
 * Deterministically shuffle [0, n) with a Feistel-style permutation —
 * used to scatter page allocations across the physical address space
 * without storing a table.
 */
std::uint64_t feistelPermute(std::uint64_t x, std::uint64_t n,
                             std::uint64_t key);

} // namespace garibaldi

#endif // GARIBALDI_COMMON_RNG_HH
