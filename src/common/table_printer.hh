/**
 * @file
 * Aligned text-table renderer used by every bench binary to print
 * paper-style rows/series, with an optional CSV mode for plotting.
 */

#ifndef GARIBALDI_COMMON_TABLE_PRINTER_HH
#define GARIBALDI_COMMON_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace garibaldi
{

/** Builds a table row by row, then renders aligned text or CSV. */
class TablePrinter
{
  public:
    /** @param headers column headers, fixing the column count. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format as percent ("+12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render as an aligned text table. */
    std::string toText() const;

    /** Render as CSV. */
    std::string toCsv() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace garibaldi

#endif // GARIBALDI_COMMON_TABLE_PRINTER_HH
