#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace garibaldi
{

ArgParser::ArgParser(std::string description_)
    : description(std::move(description_))
{
    addFlag("help", "show this help and exit");
}

void
ArgParser::addInt(const std::string &name, std::int64_t def,
                  const std::string &help)
{
    options.push_back({name, Kind::Int, help, std::to_string(def),
                       std::to_string(def)});
}

void
ArgParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    options.push_back({name, Kind::Double, help, std::to_string(def),
                       std::to_string(def)});
}

void
ArgParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    options.push_back({name, Kind::String, help, def, def});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    options.push_back({name, Kind::Flag, help, "0", "0"});
}

const ArgParser::Option *
ArgParser::find(const std::string &name, Kind kind) const
{
    for (const auto &o : options) {
        if (o.name == name) {
            if (o.kind != kind)
                panic("option --", name, " accessed with wrong type");
            return &o;
        }
    }
    panic("unknown option --", name);
}

ArgParser::Option *
ArgParser::findMutable(const std::string &name)
{
    for (auto &o : options)
        if (o.name == name)
            return &o;
    return nullptr;
}

void
ArgParser::usage(const char *prog) const
{
    std::printf("%s\n\nusage: %s [options]\n\noptions:\n",
                description.c_str(), prog);
    for (const auto &o : options) {
        std::string lhs = "  --" + o.name;
        if (o.kind != Kind::Flag)
            lhs += " <v>";
        std::printf("%-26s %s", lhs.c_str(), o.help.c_str());
        if (o.kind != Kind::Flag)
            std::printf(" (default: %s)", o.def.c_str());
        std::printf("\n");
    }
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            std::exit(1);
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        Option *opt = findMutable(name);
        if (!opt) {
            std::fprintf(stderr, "error: unknown option --%s\n",
                         name.c_str());
            std::exit(1);
        }
        opt->set = true;
        if (opt->kind == Kind::Flag) {
            opt->value = "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --%s requires a value\n",
                             name.c_str());
                std::exit(1);
            }
            value = argv[++i];
        }
        opt->value = value;
    }
    if (getFlag("help")) {
        usage(argv[0]);
        std::exit(0);
    }
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int)->value.c_str(), nullptr, 0);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double)->value.c_str(), nullptr);
}

const std::string &
ArgParser::getString(const std::string &name) const
{
    return find(name, Kind::String)->value;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag)->value == "1";
}

bool
ArgParser::wasSet(const std::string &name) const
{
    for (const auto &o : options)
        if (o.name == name)
            return o.set;
    panic("unknown option --", name);
}

} // namespace garibaldi
