/**
 * @file
 * Saturating counter, the workhorse of branch predictors, SHiP/Hawkeye
 * predictors and the Garibaldi pair-table miss-cost and sctr fields.
 */

#ifndef GARIBALDI_COMMON_SAT_COUNTER_HH
#define GARIBALDI_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace garibaldi
{

/**
 * An n-bit unsigned saturating counter.  Increments stick at 2^n - 1,
 * decrements stick at 0.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits counter width in bits (1..16)
     * @param initial initial value, clamped into range
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal((1u << bits) - 1),
          val(initial > maxVal ? maxVal : initial)
    {
        if (bits == 0 || bits > 16)
            panic("SatCounter width out of range: ", bits);
    }

    /** Saturating increment. */
    void
    increment(unsigned by = 1)
    {
        val = (val + by > maxVal) ? maxVal : val + by;
    }

    /** Saturating decrement. */
    void
    decrement(unsigned by = 1)
    {
        val = (by > val) ? 0 : val - by;
    }

    /** Current value. */
    unsigned value() const { return val; }

    /** Maximum representable value. */
    unsigned max() const { return maxVal; }

    /** True when the counter is in its upper half (weakly/strongly set). */
    bool isSet() const { return val > maxVal / 2; }

    /** Force a value (clamped). */
    void
    set(unsigned v)
    {
        val = v > maxVal ? maxVal : v;
    }

    /** Reset to zero. */
    void reset() { val = 0; }

  private:
    unsigned maxVal = 1;
    unsigned val = 0;
};

} // namespace garibaldi

#endif // GARIBALDI_COMMON_SAT_COUNTER_HH
