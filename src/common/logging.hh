/**
 * @file
 * Minimal gem5-flavored logging/termination helpers.
 *
 * panic(): a simulator bug — something that must never happen regardless
 * of user input; aborts so a core dump / debugger can be attached.
 * fatal(): the user's fault (bad configuration, invalid arguments);
 * exits cleanly with an error code.
 * warn()/inform(): status messages that never stop the simulation.
 */

#ifndef GARIBALDI_COMMON_LOGGING_HH
#define GARIBALDI_COMMON_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace garibaldi
{

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a message: internal invariant violated (simulator bug). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Exit with a message: unusable user configuration or input. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Non-fatal warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

} // namespace garibaldi

/**
 * Rate-limited warnings for per-access paths: the per-call-site static
 * keeps a warning embedded in a hot loop from flooding a 100k-access
 * run.  Macros (not templates) because each *call site* needs its own
 * suppression state; atomics because sweep workers share call sites.
 *
 * Sharing classification: these statics are SIM_SHARED_SYNC in spirit
 * (internally synchronized, relaxed), but markers cannot live inside a
 * backslash-continued macro body, so the waiver is the path exemption
 * in scripts/lint_determinism.py (STATIC_MUTABLE_EXEMPT).  They feed
 * stderr rate-limiting only and never reach simulated output.
 *
 * warn_once(...): emit on the first hit at this site, swallow the rest.
 */
#define warn_once(...)                                                   \
    do {                                                                 \
        static std::atomic<bool> warn_once_fired_{false};                \
        if (!warn_once_fired_.exchange(true,                             \
                                       std::memory_order_relaxed))       \
            ::garibaldi::warn(__VA_ARGS__);                              \
    } while (0)

/**
 * warn_every_n(n, ...): emit on the 1st, (n+1)th, (2n+1)th ... hit at
 * this site, tagging each emission with the total occurrence count so
 * the suppressed volume stays visible.
 */
#define warn_every_n(n, ...)                                             \
    do {                                                                 \
        static std::atomic<std::uint64_t> warn_every_count_{0};          \
        std::uint64_t warn_seen_ = warn_every_count_.fetch_add(          \
            1, std::memory_order_relaxed);                               \
        if (warn_seen_ % (n) == 0)                                       \
            ::garibaldi::warn(__VA_ARGS__, " (occurrence ",              \
                              warn_seen_ + 1, ")");                      \
    } while (0)

#endif // GARIBALDI_COMMON_LOGGING_HH
