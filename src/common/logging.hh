/**
 * @file
 * Minimal gem5-flavored logging/termination helpers.
 *
 * panic(): a simulator bug — something that must never happen regardless
 * of user input; aborts so a core dump / debugger can be attached.
 * fatal(): the user's fault (bad configuration, invalid arguments);
 * exits cleanly with an error code.
 * warn()/inform(): status messages that never stop the simulation.
 */

#ifndef GARIBALDI_COMMON_LOGGING_HH
#define GARIBALDI_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace garibaldi
{

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a message: internal invariant violated (simulator bug). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Exit with a message: unusable user configuration or input. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Non-fatal warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

} // namespace garibaldi

#endif // GARIBALDI_COMMON_LOGGING_HH
