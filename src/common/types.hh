/**
 * @file
 * Fundamental type aliases and address-geometry helpers shared by every
 * subsystem.  The modeled machine uses 64 B cache lines, 4 KB pages and a
 * 44-bit physical address space (16 TB), matching Table 1/2 of the paper.
 */

#ifndef GARIBALDI_COMMON_TYPES_HH
#define GARIBALDI_COMMON_TYPES_HH

#include <cstdint>

namespace garibaldi
{

/** Byte address, virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Simulated clock cycle count (3.0 GHz core clock domain). */
using Cycle = std::uint64_t;

/** Monotonic per-structure access sequence number. */
using Tick = std::uint64_t;

/** Identifier of a simulated core (0-based). */
using CoreId = std::uint32_t;

/** Width of a cache line in bytes. */
constexpr Addr kLineBytes = 64;
/** log2 of the cache line size. */
constexpr unsigned kLineShift = 6;

/** Width of a memory page in bytes. */
constexpr Addr kPageBytes = 4096;
/** log2 of the page size. */
constexpr unsigned kPageShift = 12;

/** Number of cache lines in one page. */
constexpr Addr kLinesPerPage = kPageBytes / kLineBytes;

/**
 * Tolerated out-of-order arrival window for shared-resource occupancy
 * models (DRAM channels, LLC bank ports).  The simulator interleaves
 * cores with bounded time skew, so a request arriving more than this
 * many cycles behind the newest arrival a structure has seen (its
 * arrival high-water mark — never its busy horizon, which would write
 * off genuine backlog) is served from the capacity the structure had
 * back then ("backfill") instead of queueing behind reservations made
 * after its arrival; a backfill into a saturated structure still pays
 * for and books the committed bandwidth.  One constant for every model
 * keeps their skew tolerance from drifting apart.
 */
constexpr Cycle kBackfillSlack = 64;

/** Number of physical address bits modeled (16 TB, Table 2). */
constexpr unsigned kPhysAddrBits = 44;

/** Mask covering the modeled physical address space. */
constexpr Addr kPhysAddrMask = (Addr{1} << kPhysAddrBits) - 1;

/** Align @p a down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~(kLineBytes - 1);
}

/** Cache line number of address @p a. */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/** Align @p a down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(kPageBytes - 1);
}

/** Page (frame) number of address @p a. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageShift;
}

/** Byte offset of @p a within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (kPageBytes - 1);
}

/**
 * Line index of @p a within its page (the 6-bit "page offset, 64 B
 * aligned" field of Fig. 8/10 in the paper).
 */
constexpr Addr
lineInPage(Addr a)
{
    return (a & (kPageBytes - 1)) >> kLineShift;
}

} // namespace garibaldi

#endif // GARIBALDI_COMMON_TYPES_HH
