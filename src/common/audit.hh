/**
 * @file
 * Runtime invariant-audit mode: SIM_ASSERT checks for the identities
 * earlier PRs verified by hand (DRAM stall-subset books, telemetry
 * window chaining, MSHR booking sanity, per-bank budget splits).
 *
 * Two gates, mirroring the obs subsystem's overhead discipline:
 *
 *  - Compile time: the SIM_AUDIT preprocessor flag (CMake option
 *    SIM_AUDIT, default ON).  OFF expands every SIM_ASSERT to nothing —
 *    true zero cost for maximal-perf builds.
 *  - Run time: the --audit knob (audit::setEnabled).  Compiled-in but
 *    disabled checks cost one predictable branch on a relaxed atomic
 *    load per check site — the same "one branch" budget the tracer's
 *    null-pointer gate pays.
 *
 * A failing check is a simulator bug, never a user error, so it
 * panic()s (aborts) with an "audit:" prefix the death tests key on.
 */

#ifndef GARIBALDI_COMMON_AUDIT_HH
#define GARIBALDI_COMMON_AUDIT_HH

#include <atomic>
#include <cstdint>

#include "common/logging.hh"
#include "common/sharing.hh"

namespace garibaldi
{

class ArgParser;

namespace audit
{

/** The checks exist in this build (CMake -DSIM_AUDIT). */
#if SIM_AUDIT
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

namespace detail
{
/**
 * Relaxed atomic, not a plain bool: the sweep engine's workers read it
 * concurrently after main() set it, and the audit build must itself be
 * clean under the TSan lane it is meant to run in.
 */
SIM_SHARED_SYNC inline std::atomic<bool> enabled_{false};
} // namespace detail

/** The --audit knob is on (always false when not compiled in). */
inline bool
enabled()
{
    return kCompiledIn &&
           detail::enabled_.load(std::memory_order_relaxed);
}

/** Flip the runtime knob (CLI layer; set before any sim runs). */
inline void
setEnabled(bool on)
{
    detail::enabled_.store(on, std::memory_order_relaxed);
}

} // namespace audit

/**
 * Audit assertion: panics with an "audit:" prefix when @p cond is
 * false and the audit mode is compiled in AND enabled.  The condition
 * is not evaluated when the knob is off, so check expressions may be
 * arbitrarily expensive.
 */
#if SIM_AUDIT
#define SIM_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (::garibaldi::audit::enabled() && !(cond))                    \
            ::garibaldi::panic("audit: ", __VA_ARGS__,                   \
                               " [violated: " #cond "]");                \
    } while (0)
#else
// sizeof never evaluates its operand, so the condition's operands
// (often otherwise-unused audit-only parameters) count as used
// without generating any code.
#define SIM_ASSERT(cond, ...)                                            \
    do {                                                                 \
        (void)sizeof((cond));                                            \
    } while (0)
#endif

namespace audit
{

/**
 * Stall books must stay subsets of the queue book: turnaround and
 * refresh stalls are, by construction, components of the queue delay a
 * requester observed, so their cumulative sums can never exceed the
 * cumulative queued cycles (the identity PR 5 verified by hand and the
 * avg_queue_delay recompute silently depends on).
 */
inline void
checkStallSubset(const char *who, std::uint64_t turnaround_cycles,
                 std::uint64_t refresh_stall_cycles,
                 std::uint64_t queued_cycles)
{
    SIM_ASSERT(turnaround_cycles + refresh_stall_cycles <= queued_cycles,
               who, ": turnaround (", turnaround_cycles,
               ") + refresh stalls (", refresh_stall_cycles,
               ") exceed queued cycles (", queued_cycles, ")");
    (void)who;
    (void)turnaround_cycles;
    (void)refresh_stall_cycles;
    (void)queued_cycles;
}

/**
 * Per-bank MSHR shares must sum to the configured whole-LLC budget —
 * max(total, banks) with the every-bank-keeps-one clamp (the PR-3
 * remainder-first split: 10 over 4 banks = 3+3+2+2, never 2x4).
 */
inline void
checkMshrBudgetSplit(const char *who, std::uint64_t total_budget,
                     std::uint64_t banks, std::uint64_t assigned_sum)
{
    SIM_ASSERT(assigned_sum ==
                   (total_budget > banks ? total_budget : banks),
               who, ": per-bank MSHR shares sum to ", assigned_sum,
               " but the configured budget is ", total_budget, " over ",
               banks, " banks");
    (void)who;
    (void)total_budget;
    (void)banks;
    (void)assigned_sum;
}

/**
 * Register the --audit flag.  Pairs with applyAuditArg the way
 * addObsArgs pairs with obsConfigFromArgs.
 */
void addAuditArg(ArgParser &args);

/**
 * Act on --audit: enable the checks, or fatal() when the flag is
 * passed to a build compiled without them (silently "auditing"
 * nothing would be false confidence).  @return the knob state.
 */
bool applyAuditArg(const ArgParser &args);

} // namespace audit
} // namespace garibaldi

#endif // GARIBALDI_COMMON_AUDIT_HH
