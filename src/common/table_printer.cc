#include "common/table_printer.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace garibaldi
{

TablePrinter::TablePrinter(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    if (headers.empty())
        panic("TablePrinter needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size())
        panic("TablePrinter row has ", cells.size(), " cells, expected ",
              headers.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TablePrinter::toText() const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::string
TablePrinter::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

} // namespace garibaldi
