#include "common/stat_kind.hh"

#include "common/logging.hh"

namespace garibaldi
{

WindowRule
windowRuleOf(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return WindowRule::Subtract;
      case StatKind::Rate:
        return WindowRule::Recompute;
      case StatKind::Gauge:
      case StatKind::Quantile:
      case StatKind::HistogramSummary:
        return WindowRule::KeepLast;
    }
    return WindowRule::Subtract;
}

MergeOp
mergeOpOf(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return MergeOp::Sum;
      case StatKind::Gauge:
        return MergeOp::Last;
      case StatKind::Rate:
      case StatKind::Quantile:
      case StatKind::HistogramSummary:
        return MergeOp::Recompute;
    }
    return MergeOp::Sum;
}

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Rate:
        return "rate";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Quantile:
        return "quantile";
      case StatKind::HistogramSummary:
        return "histogram_summary";
    }
    return "counter";
}

const char *
windowRuleName(WindowRule rule)
{
    switch (rule) {
      case WindowRule::Subtract:
        return "subtract";
      case WindowRule::Recompute:
        return "recompute";
      case WindowRule::KeepLast:
        return "keep-last";
    }
    return "subtract";
}

const char *
mergeOpName(MergeOp op)
{
    switch (op) {
      case MergeOp::Sum:
        return "sum";
      case MergeOp::Recompute:
        return "recompute";
      case MergeOp::Last:
        return "last";
    }
    return "sum";
}

const char *const *
StatKindRegistry::quantileSuffixes()
{
    static const char *const kSuffixes[] = {"_p50", "_p90", "_p95",
                                            "_p99", nullptr};
    return kSuffixes;
}

namespace
{

bool
endsWith(const std::string &name, const std::string &suffix)
{
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
hasQuantileSuffix(const std::string &name)
{
    for (const char *const *s = StatKindRegistry::quantileSuffixes();
         *s != nullptr; ++s)
        if (endsWith(name, *s))
            return true;
    return false;
}

} // namespace

StatKindRegistry &
StatKindRegistry::mutableInstance()
{
    // determinism-lint: allow(static-mutable) populated once by the const SIM_STATS registrars during static init (single-threaded), strictly read-only after main() starts
    static StatKindRegistry registry;
    return registry;
}

const StatKindRegistry &
StatKindRegistry::instance()
{
    return mutableInstance();
}

const StatDecl *
StatKindRegistry::resolve(const std::string &name) const
{
    auto it = decls.find(name);
    if (it != decls.end())
        return &it->second;
    // Exported names carry addAll prefixes ("llc.", "dram.", ...), so
    // match the longest declared name sitting at a '.' boundary.
    const StatDecl *best = nullptr;
    std::size_t best_len = 0;
    for (const auto &[dname, decl] : decls) {
        if (dname.size() + 1 >= name.size() || dname.size() <= best_len)
            continue;
        if (name[name.size() - dname.size() - 1] != '.')
            continue;
        if (endsWith(name, dname)) {
            best = &decl;
            best_len = dname.size();
        }
    }
    return best;
}

WindowRule
StatKindRegistry::windowRule(const std::string &name) const
{
    if (const StatDecl *d = resolve(name))
        return windowRuleOf(d->sem.kind);
    return hasQuantileSuffix(name) ? WindowRule::KeepLast
                                   : WindowRule::Subtract;
}

bool
StatKindRegistry::isQuantile(const std::string &name) const
{
    if (const StatDecl *d = resolve(name))
        return d->sem.kind == StatKind::Quantile;
    return hasQuantileSuffix(name);
}

std::size_t
StatKindRegistry::size() const
{
    return decls.size();
}

StatDomainRegistrar::StatDomainRegistrar(
    const char *producer, std::initializer_list<StatDecl> decls)
{
    StatKindRegistry &reg = StatKindRegistry::mutableInstance();
    for (const StatDecl &d : decls) {
        std::string name(d.name);
        if (name.find('*') != std::string::npos)
            continue; // wildcard families are analyzer-only
        auto [it, inserted] = reg.decls.emplace(name, d);
        // Duplicate declarations across producers must agree on the
        // kind; scripts/analyze_stats.py reports the collision with
        // file/line detail, this is the runtime backstop.
        if (!inserted && it->second.sem.kind != d.sem.kind)
            fatal("stat '", name, "' declared with conflicting kinds (",
                  statKindName(it->second.sem.kind), " vs ",
                  statKindName(d.sem.kind), ") by ", producer);
    }
}

} // namespace garibaldi
