#include "common/rng.hh"

#include <cmath>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace garibaldi
{

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1) | 1)
{
    next();
    state += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire's nearly-divisionless method.
    std::uint64_t m = std::uint64_t{next()} * bound;
    std::uint32_t l = static_cast<std::uint32_t>(m);
    if (l < bound) {
        std::uint32_t t = -bound % bound;
        while (l < t) {
            m = std::uint64_t{next()} * bound;
            l = static_cast<std::uint32_t>(m);
        }
    }
    return static_cast<std::uint32_t>(m >> 32);
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Pcg32::next64()
{
    return (std::uint64_t{next()} << 32) | next();
}

ZipfSampler::ZipfSampler(std::uint64_t n_, double alpha_)
    : n(n_), alpha(alpha_)
{
    if (n == 0)
        panic("ZipfSampler population must be > 0");
    if (alpha < 0)
        panic("ZipfSampler alpha must be >= 0");
    // Rejection-inversion setup (works for any alpha >= 0, alpha != 1
    // handled via the generalized harmonic integral; alpha == 1 uses
    // logarithms).
    hx0 = h(0.5) + 1.0;
    hxn = h(static_cast<double>(n) + 0.5);
    s = 2.0 - hInv(h(1.5) - std::pow(1.0, -alpha));
}

double
ZipfSampler::h(double x) const
{
    if (alpha == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - alpha) - 1.0) / (1.0 - alpha);
}

double
ZipfSampler::hInv(double x) const
{
    if (alpha == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - alpha), 1.0 / (1.0 - alpha));
}

std::uint64_t
ZipfSampler::sample(Pcg32 &rng) const
{
    if (alpha == 0.0 || n == 1)
        return rng.nextBounded(static_cast<std::uint32_t>(
            n > 0xffffffffULL ? 0xffffffffULL : n));
    while (true) {
        double u = hxn + rng.nextDouble() * (hx0 - hxn);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        if (static_cast<double>(k) - x <= s ||
            u >= h(static_cast<double>(k) + 0.5) -
                     std::pow(static_cast<double>(k), -alpha)) {
            return k - 1; // ranks are 0-based externally
        }
    }
}

std::uint64_t
feistelPermute(std::uint64_t x, std::uint64_t n, std::uint64_t key)
{
    if (n <= 1)
        return 0;
    // Cycle-walking Feistel network over the smallest even-bit domain
    // covering n.
    unsigned bits = ceilLog2(n);
    if (bits & 1)
        ++bits;
    unsigned half = bits / 2;
    std::uint64_t mask = (std::uint64_t{1} << half) - 1;
    std::uint64_t y = x;
    do {
        std::uint64_t l = y >> half;
        std::uint64_t r = y & mask;
        for (int round = 0; round < 4; ++round) {
            std::uint64_t f =
                mix64(r ^ key ^ (std::uint64_t{0x9e37} << round)) & mask;
            std::uint64_t nl = r;
            r = (l ^ f) & mask;
            l = nl;
        }
        y = (l << half) | r;
    } while (y >= n);
    return y;
}

} // namespace garibaldi
