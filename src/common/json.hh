/**
 * @file
 * Minimal JSON document model with a writer and a strict parser.
 *
 * Used by the sweep engine's ResultsTable (structured result emission
 * and round-trip tests) and by the CI scripts' BENCH_*.json artifacts.
 * Objects preserve insertion order so emitted documents are
 * deterministic and diffable across runs.
 */

#ifndef GARIBALDI_COMMON_JSON_HH
#define GARIBALDI_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace garibaldi
{

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}

    static JsonValue boolean(bool v);
    static JsonValue number(double v);
    static JsonValue string(std::string v);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array access. */
    void push(JsonValue v);
    std::size_t size() const;
    const JsonValue &at(std::size_t i) const;

    /** Object access (insertion-ordered). */
    void set(const std::string &key, JsonValue v);
    bool has(const std::string &key) const;
    const JsonValue &get(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * Serialize.  @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

    /** Parse a complete document; fatal() on malformed input. */
    static JsonValue parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** Escape @p s as the inside of a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Format @p v the way JsonValue::dump does (shortest representation
 * that parses back to the same double).  Non-finite values emit the
 * JSON5-style tokens NaN / Infinity / -Infinity, which the parser
 * accepts back (strict JSON has no spelling for them).
 */
std::string jsonNumber(double v);

} // namespace garibaldi

#endif // GARIBALDI_COMMON_JSON_HH
