/**
 * @file
 * Value histogram with linear buckets plus exact mean tracking, used for
 * reuse-distance and stall-length distributions (Fig. 3 reproduction).
 */

#ifndef GARIBALDI_COMMON_HISTOGRAM_HH
#define GARIBALDI_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace garibaldi
{

/**
 * Fixed set of distribution landmarks of one histogram, for uniform
 * percentile export (stat sets, trace summaries, bench footers).
 * Percentiles are bucket lower edges, so they are quantized to the
 * histogram's bucket width; count/mean/max are exact.
 */
struct QuantileSummary
{
    std::uint64_t count = 0;
    double mean = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
};

/**
 * Accumulates samples into fixed-width buckets; values beyond the last
 * bucket land in an overflow bucket.  Also tracks exact sum/count/max so
 * means are not quantized.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each linear bucket (> 0)
     * @param num_buckets number of buckets before overflow
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Arithmetic mean of samples (0 when empty). */
    double mean() const;

    /** Largest sample seen (0 when empty). */
    std::uint64_t maxValue() const { return maxSeen; }

    /** Smallest value with cumulative probability >= p (p in [0,1]). */
    std::uint64_t percentile(double p) const;

    /** The standard landmark percentiles in one pass-friendly struct. */
    QuantileSummary quantiles() const;

    /** Bucket counts including the trailing overflow bucket. */
    const std::vector<std::uint64_t> &buckets() const { return counts; }

    /** Lower edge of bucket @p i. */
    std::uint64_t bucketLow(std::size_t i) const { return i * width; }

    /** Reset all state. */
    void clear();

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    /** One-line summary, for debugging and bench footers. */
    std::string summary() const;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> counts; // last bucket = overflow
    std::uint64_t total = 0;
    double sum = 0;
    std::uint64_t maxSeen = 0;
};

} // namespace garibaldi

#endif // GARIBALDI_COMMON_HISTOGRAM_HH
