#include "core/tlb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/stat_kind.hh"

namespace garibaldi
{

SIM_STATS(TlbHierarchy,
    SIM_STAT("itlb_hits", counter),
    SIM_STAT("itlb_misses", counter),
    SIM_STAT("dtlb_hits", counter),
    SIM_STAT("dtlb_misses", counter),
    SIM_STAT("stlb_hits", counter),
    SIM_STAT("stlb_misses", counter),
    SIM_STAT("instr_walks", counter),
    SIM_STAT("data_walks", counter));

Tlb::Tlb(std::uint32_t entries, std::uint32_t assoc_)
    : assoc(assoc_)
{
    if (entries == 0 || assoc_ == 0 || entries % assoc_ != 0)
        fatal("TLB geometry invalid: ", entries, " entries, assoc ",
              assoc_);
    numSets = entries / assoc_;
    entriesArr.resize(entries);
}

std::uint32_t
Tlb::setOf(Addr vpn) const
{
    return static_cast<std::uint32_t>(mix64(vpn) % numSets);
}

bool
Tlb::access(Addr vpn)
{
    std::uint32_t set = setOf(vpn);
    Entry *base = &entriesArr[std::size_t{set} * assoc];
    for (std::uint32_t w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            e.lastUse = ++tick;
            ++nHits;
            return true;
        }
    }
    // Victim: first invalid way, else the oldest.
    Entry *lru = base;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (!base[w].valid) {
            lru = &base[w];
            break;
        }
        if (base[w].lastUse < lru->lastUse)
            lru = &base[w];
    }
    lru->vpn = vpn;
    lru->valid = true;
    lru->lastUse = ++tick;
    ++nMisses;
    return false;
}

bool
Tlb::probe(Addr vpn) const
{
    std::uint32_t set = setOf(vpn);
    const Entry *base = &entriesArr[std::size_t{set} * assoc];
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    return false;
}

TlbHierarchy::TlbHierarchy(const Params &params_)
    : params(params_),
      itlb(params_.itlbEntries, std::min<std::uint32_t>(
          params_.itlbEntries, 8)),
      dtlb(params_.dtlbEntries, std::min<std::uint32_t>(
          params_.dtlbEntries, 6)),
      stlb(params_.stlbEntries, params_.stlbAssoc)
{
}

Cycle
TlbHierarchy::accessThrough(Tlb &first, Addr vpn, std::uint64_t &walks)
{
    if (first.access(vpn))
        return 0;
    if (stlb.access(vpn))
        return params.stlbHitCost;
    ++walks;
    return params.walkCost;
}

Cycle
TlbHierarchy::accessInstr(Addr vpn)
{
    return accessThrough(itlb, vpn, iWalks);
}

Cycle
TlbHierarchy::accessData(Addr vpn)
{
    return accessThrough(dtlb, vpn, dWalks);
}

StatSet
TlbHierarchy::stats() const
{
    StatSet s;
    s.add("itlb_hits", static_cast<double>(itlb.hits()));
    s.add("itlb_misses", static_cast<double>(itlb.misses()));
    s.add("dtlb_hits", static_cast<double>(dtlb.hits()));
    s.add("dtlb_misses", static_cast<double>(dtlb.misses()));
    s.add("stlb_hits", static_cast<double>(stlb.hits()));
    s.add("stlb_misses", static_cast<double>(stlb.misses()));
    s.add("instr_walks", static_cast<double>(iWalks));
    s.add("data_walks", static_cast<double>(dWalks));
    return s;
}

} // namespace garibaldi
