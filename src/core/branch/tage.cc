#include "core/branch/tage.hh"

#include "common/intmath.hh"
#include "common/stat_kind.hh"

namespace garibaldi
{

SIM_STATS(TagePredictor,
    SIM_STAT("lookups", counter),
    SIM_STAT("correct", counter),
    SIM_STAT("accuracy", rate("correct", "lookups")),
    SIM_STAT("allocations", counter),
    SIM_STAT("indirect_lookups", counter),
    SIM_STAT("indirect_correct", counter));

constexpr std::array<unsigned, TagePredictor::kNumTables>
    TagePredictor::kHistLen;

TagePredictor::TagePredictor()
    : base(kBaseSize, SatCounter(2, 1)), btb(kBtbSize)
{
    for (auto &t : tables)
        t.resize(kTableSize);
}

std::size_t
TagePredictor::baseIndex(Addr pc) const
{
    return static_cast<std::size_t>(pc >> 2) & (kBaseSize - 1);
}

std::uint64_t
TagePredictor::foldedHistory(unsigned bits) const
{
    std::uint64_t h = bits >= 64 ? history
                                 : history & ((std::uint64_t{1} << bits)
                                              - 1);
    // Fold to 16 bits.
    std::uint64_t folded = 0;
    while (h) {
        folded ^= h & 0xffff;
        h >>= 16;
    }
    return folded;
}

std::size_t
TagePredictor::taggedIndex(Addr pc, unsigned table) const
{
    std::uint64_t h = foldedHistory(kHistLen[table]);
    return static_cast<std::size_t>(
               mix64((pc >> 2) ^ (h << 1) ^ table)) & (kTableSize - 1);
}

std::uint16_t
TagePredictor::taggedTag(Addr pc, unsigned table) const
{
    std::uint64_t h = foldedHistory(kHistLen[table]);
    return static_cast<std::uint16_t>(
        (mix64((pc >> 2) * 0x9e3779b1 ^ h ^ (table << 8)) & 0xff) | 0x100);
}

int
TagePredictor::findProvider(Addr pc, std::size_t idx[kNumTables],
                            std::uint16_t tag[kNumTables]) const
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        idx[t] = taggedIndex(pc, t);
        tag[t] = taggedTag(pc, t);
    }
    for (int t = kNumTables - 1; t >= 0; --t) {
        const TaggedEntry &e = tables[t][idx[t]];
        if (e.valid && e.tag == tag[t])
            return t;
    }
    return -1;
}

bool
TagePredictor::predict(Addr pc)
{
    ++nLookups;
    std::size_t idx[kNumTables];
    std::uint16_t tag[kNumTables];
    int provider = findProvider(pc, idx, tag);
    if (provider >= 0)
        return tables[provider][idx[provider]].ctr.isSet();
    return base[baseIndex(pc)].isSet();
}

void
TagePredictor::update(Addr pc, bool taken)
{
    std::size_t idx[kNumTables];
    std::uint16_t tag[kNumTables];
    int provider = findProvider(pc, idx, tag);

    bool predicted;
    if (provider >= 0) {
        TaggedEntry &e = tables[provider][idx[provider]];
        predicted = e.ctr.isSet();
        if (predicted == taken)
            e.useful.increment();
        else
            e.useful.decrement();
        if (taken)
            e.ctr.increment();
        else
            e.ctr.decrement();
    } else {
        SatCounter &c = base[baseIndex(pc)];
        predicted = c.isSet();
        if (taken)
            c.increment();
        else
            c.decrement();
    }

    if (predicted == taken) {
        ++nCorrect;
    } else if (provider < static_cast<int>(kNumTables) - 1) {
        // Allocate in a longer-history table with a non-useful entry.
        for (unsigned t = provider + 1; t < kNumTables; ++t) {
            TaggedEntry &e = tables[t][idx[t]];
            if (!e.valid || e.useful.value() == 0) {
                e.valid = true;
                e.tag = tag[t];
                e.ctr = SatCounter(3, taken ? 4 : 3);
                e.useful = SatCounter(2, 0);
                ++nAllocs;
                break;
            }
            e.useful.decrement();
        }
    }

    history = (history << 1) | (taken ? 1 : 0);
}

Addr
TagePredictor::predictIndirect(Addr pc)
{
    ++nIndirect;
    const BtbEntry &e =
        btb[static_cast<std::size_t>(mix64(pc ^ (history & 0xf))) &
            (kBtbSize - 1)];
    if (e.valid && e.pc == pc)
        return e.target;
    return 0;
}

void
TagePredictor::updateIndirect(Addr pc, Addr target)
{
    BtbEntry &e =
        btb[static_cast<std::size_t>(mix64(pc ^ (history & 0xf))) &
            (kBtbSize - 1)];
    if (e.valid && e.pc == pc && e.target == target)
        ++nIndirectCorrect;
    e.pc = pc;
    e.target = target;
    e.valid = true;
    history = (history << 1) | 1;
}

StatSet
TagePredictor::stats() const
{
    StatSet s;
    s.add("lookups", static_cast<double>(nLookups));
    s.add("correct", static_cast<double>(nCorrect));
    s.add("accuracy",
          nLookups ? static_cast<double>(nCorrect) / nLookups : 0.0);
    s.add("allocations", static_cast<double>(nAllocs));
    s.add("indirect_lookups", static_cast<double>(nIndirect));
    s.add("indirect_correct", static_cast<double>(nIndirectCorrect));
    return s;
}

} // namespace garibaldi
