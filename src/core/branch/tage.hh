/**
 * @file
 * TAGE-lite conditional branch predictor (Seznec & Michaud, the Table 1
 * predictor) plus a last-target BTB for indirect branches standing in
 * for ITTAGE.  Four tagged tables with geometric history lengths back a
 * bimodal base predictor; allocation-on-mispredict with useful bits.
 */

#ifndef GARIBALDI_CORE_BRANCH_TAGE_HH
#define GARIBALDI_CORE_BRANCH_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace garibaldi
{

/** TAGE-lite: bimodal base + 4 tagged geometric-history components. */
class TagePredictor
{
  public:
    TagePredictor();

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(Addr pc);

    /** Train with the resolved outcome; updates global history. */
    void update(Addr pc, bool taken);

    /** Predict the target of an indirect branch at @p pc. */
    Addr predictIndirect(Addr pc);

    /** Train the indirect target buffer; updates global history. */
    void updateIndirect(Addr pc, Addr target);

    StatSet stats() const;

    std::uint64_t lookups() const { return nLookups; }

  private:
    static constexpr unsigned kNumTables = 4;
    static constexpr unsigned kTableBits = 10;
    static constexpr std::size_t kTableSize =
        std::size_t{1} << kTableBits;
    static constexpr unsigned kBaseBits = 13;
    static constexpr std::size_t kBaseSize = std::size_t{1} << kBaseBits;
    static constexpr std::array<unsigned, kNumTables> kHistLen{8, 16, 32,
                                                               64};
    static constexpr std::size_t kBtbSize = 4096;

    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr{3, 3}; //!< 3-bit, weakly not-taken start
        SatCounter useful{2, 0};
        bool valid = false;
    };

    std::size_t baseIndex(Addr pc) const;
    std::size_t taggedIndex(Addr pc, unsigned table) const;
    std::uint16_t taggedTag(Addr pc, unsigned table) const;
    std::uint64_t foldedHistory(unsigned bits) const;

    /** Provider lookup shared by predict/update. */
    int findProvider(Addr pc, std::size_t idx[kNumTables],
                     std::uint16_t tag[kNumTables]) const;

    std::vector<SatCounter> base;
    std::array<std::vector<TaggedEntry>, kNumTables> tables;
    std::uint64_t history = 0;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;

    std::uint64_t nLookups = 0;
    std::uint64_t nCorrect = 0;
    std::uint64_t nAllocs = 0;
    std::uint64_t nIndirect = 0;
    std::uint64_t nIndirectCorrect = 0;
};

} // namespace garibaldi

#endif // GARIBALDI_CORE_BRANCH_TAGE_HH
