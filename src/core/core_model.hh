/**
 * @file
 * Interval-style core performance model (the Sniper methodology of §6).
 *
 * Instructions retire at the issue width; stall events add cycles on
 * top and are attributed to CPI-stack components:
 *  - instruction fetch misses stall the frontend serially (minus a
 *    small decoupled-fetch-buffer overlap) — this asymmetry versus data
 *    misses is the effect Garibaldi exploits;
 *  - independent data misses overlap within the ROB shadow (MLP); a
 *    per-workload dependence fraction serializes pointer-chasing loads;
 *  - branch mispredictions flush the pipeline;
 *  - TLB misses charge the translation path.
 */

#ifndef GARIBALDI_CORE_CORE_MODEL_HH
#define GARIBALDI_CORE_CORE_MODEL_HH

#include <memory>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/branch/tage.hh"
#include "core/cpi_stack.hh"
#include "core/page_table.hh"
#include "core/tlb.hh"
#include "mem/hierarchy.hh"
#include "workloads/microop.hh"

namespace garibaldi
{

/** Pipeline parameters (Table 1 defaults). */
struct CoreParams
{
    unsigned issueWidth = 6;
    unsigned robEntries = 256;
    Cycle mispredictPenalty = 14;
    /** Fetch latency hidden by the decoupled fetch/decode queue. */
    Cycle fetchHideCycles = 8;
    /** Cycles of independent work the ROB hides under a lone miss. */
    Cycle robSlackCycles = 21;
    /** Fraction of a store miss charged as store-buffer pressure. */
    double storeCostFraction = 0.125;
    /** Probability a load depends on the outstanding miss (no MLP). */
    double dependentLoadFraction = 0.3;
    TlbHierarchy::Params tlb{};
};

/** Per-core retired-instruction statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t ifetchLines = 0; //!< L1I line fetches issued
    CpiStack cpi;

    double
    ipc(Cycle cycles) const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** One simulated core. */
class CoreModel
{
  public:
    /**
     * @param core core id
     * @param params pipeline parameters
     * @param hierarchy shared memory hierarchy
     * @param seed deterministic seed for the dependence model
     */
    CoreModel(CoreId core, const CoreParams &params,
              MemoryHierarchy &hierarchy, std::uint64_t seed);

    /** Retire one instruction, advancing the core clock. */
    void step(const MicroOp &op);

    /** Current core clock. */
    Cycle now() const { return cycle; }

    /** Zero the statistics window (end of warmup). */
    void resetStats();

    /** Statistics since the last reset. */
    const CoreStats &stats() const { return stat; }

    /** Cycles elapsed since the last stats reset. */
    Cycle windowCycles() const { return cycle - windowStart; }

    CoreId id() const { return coreId; }
    PageTable &pageTable() { return pt; }
    TlbHierarchy &tlbs() { return tlb; }
    TagePredictor &branchPredictor() { return bp; }

  private:
    void chargeFetch(const MicroOp &op);
    void chargeData(const MicroOp &op);
    void charge(CpiComponent c, Cycle n);
    CpiComponent fetchComponent(HitLevel level) const;
    CpiComponent dataComponent(HitLevel level) const;

    CoreId coreId;
    CoreParams params;
    MemoryHierarchy &mem;
    PageTable pt;
    TlbHierarchy tlb;
    TagePredictor bp;
    Pcg32 rng;

    Cycle cycle = 0;
    Cycle windowStart = 0;
    unsigned subcycle = 0;       //!< retire slots within current cycle
    Addr lastFetchLine = ~Addr{0};
    Cycle missShadowEnd = 0;     //!< MLP window for data misses
    CoreStats stat;
};

} // namespace garibaldi

#endif // GARIBALDI_CORE_CORE_MODEL_HH
