/**
 * @file
 * Two-level TLB model (Table 1: 64-entry ITLB, 48-entry DTLB, shared
 * 3072-entry STLB).  Misses in the first level probe the STLB; STLB
 * misses charge a fixed page-walk cost.
 */

#ifndef GARIBALDI_CORE_TLB_HH
#define GARIBALDI_CORE_TLB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace garibaldi
{

/** Fully-associative-by-set LRU TLB. */
class Tlb
{
  public:
    /**
     * @param entries total entries
     * @param assoc associativity (entries must divide evenly)
     */
    Tlb(std::uint32_t entries, std::uint32_t assoc);

    /** Probe and update LRU; inserts on miss. @return hit. */
    bool access(Addr vpn);

    /** Probe without insertion or LRU update. */
    bool probe(Addr vpn) const;

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        Tick lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setOf(Addr vpn) const;

    std::uint32_t numSets;
    std::uint32_t assoc;
    std::vector<Entry> entriesArr;
    Tick tick = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

/** ITLB/DTLB + shared STLB with fixed walk cost. */
class TlbHierarchy
{
  public:
    struct Params
    {
        std::uint32_t itlbEntries = 64;
        std::uint32_t dtlbEntries = 48;
        std::uint32_t stlbEntries = 3072;
        std::uint32_t stlbAssoc = 12;
        Cycle stlbHitCost = 8;   //!< first-level miss, STLB hit
        Cycle walkCost = 120;    //!< full page walk
    };

    explicit TlbHierarchy(const Params &params);

    /** Translate an instruction-side page. @return stall cycles. */
    Cycle accessInstr(Addr vpn);

    /** Translate a data-side page. @return stall cycles. */
    Cycle accessData(Addr vpn);

    StatSet stats() const;

  private:
    Cycle accessThrough(Tlb &first, Addr vpn, std::uint64_t &walks);

    Params params;
    Tlb itlb;
    Tlb dtlb;
    Tlb stlb;
    std::uint64_t iWalks = 0;
    std::uint64_t dWalks = 0;
};

} // namespace garibaldi

#endif // GARIBALDI_CORE_TLB_HH
