/**
 * @file
 * CPI-stack accounting (Fig. 1 reproduction).  Every stall cycle the
 * interval core model charges is attributed to exactly one component.
 */

#ifndef GARIBALDI_CORE_CPI_STACK_HH
#define GARIBALDI_CORE_CPI_STACK_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace garibaldi
{

/** Where a cycle went. */
enum class CpiComponent : std::uint8_t
{
    Base = 0,   //!< issue-width-limited useful work
    Branch,     //!< misprediction flushes
    IFetchL2,   //!< instruction fetch served by L2
    IFetchLLC,  //!< instruction fetch served by the LLC
    IFetchMem,  //!< instruction fetch served by DRAM
    DataL2,     //!< load served by L2
    DataLLC,    //!< load served by the LLC
    DataMem,    //!< load served by DRAM
    Store,      //!< store-buffer backpressure
    Itlb,       //!< instruction translation
    Dtlb,       //!< data translation
    NumComponents,
};

constexpr std::size_t kNumCpiComponents =
    static_cast<std::size_t>(CpiComponent::NumComponents);

/** Display name of a component. */
const char *cpiComponentName(CpiComponent c);

/** Per-core cycle attribution. */
struct CpiStack
{
    std::array<std::uint64_t, kNumCpiComponents> cycles{};

    void
    charge(CpiComponent c, Cycle n)
    {
        cycles[static_cast<std::size_t>(c)] += n;
    }

    Cycle
    of(CpiComponent c) const
    {
        return cycles[static_cast<std::size_t>(c)];
    }

    /** All instruction-fetch stall cycles (Fig. 13 metric). */
    Cycle
    ifetchCycles() const
    {
        return of(CpiComponent::IFetchL2) + of(CpiComponent::IFetchLLC) +
               of(CpiComponent::IFetchMem);
    }

    /** All data-side stall cycles. */
    Cycle
    dataCycles() const
    {
        return of(CpiComponent::DataL2) + of(CpiComponent::DataLLC) +
               of(CpiComponent::DataMem);
    }

    Cycle
    total() const
    {
        Cycle t = 0;
        for (auto c : cycles)
            t += c;
        return t;
    }

    void
    merge(const CpiStack &other)
    {
        for (std::size_t i = 0; i < kNumCpiComponents; ++i)
            cycles[i] += other.cycles[i];
    }

    void clear() { cycles.fill(0); }
};

inline const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base:
        return "base";
      case CpiComponent::Branch:
        return "branch";
      case CpiComponent::IFetchL2:
        return "ifetch.l2";
      case CpiComponent::IFetchLLC:
        return "ifetch.llc";
      case CpiComponent::IFetchMem:
        return "ifetch.mem";
      case CpiComponent::DataL2:
        return "data.l2";
      case CpiComponent::DataLLC:
        return "data.llc";
      case CpiComponent::DataMem:
        return "data.mem";
      case CpiComponent::Store:
        return "store";
      case CpiComponent::Itlb:
        return "itlb";
      case CpiComponent::Dtlb:
        return "dtlb";
      default:
        return "?";
    }
}

} // namespace garibaldi

#endif // GARIBALDI_CORE_CPI_STACK_HH
