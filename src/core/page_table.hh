/**
 * @file
 * Deterministic per-core page table.  Each core owns a disjoint 4 GB
 * physical zone of the 44-bit space; frames are allocated on first
 * touch and scattered inside the zone by a keyed Feistel permutation so
 * consecutive virtual pages do not map to consecutive LLC set groups.
 */

#ifndef GARIBALDI_CORE_PAGE_TABLE_HH
#define GARIBALDI_CORE_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace garibaldi
{

/** On-demand virtual-to-physical mapping for one core. */
class PageTable
{
  public:
    /**
     * @param core owning core (selects the physical zone)
     * @param scatter_key permutation key (derived from the mix seed)
     */
    PageTable(CoreId core, std::uint64_t scatter_key);

    /** Translate a virtual address, allocating its frame if needed. */
    Addr translate(Addr vaddr);

    /** Frame number backing @p vpn (allocates on demand). */
    Addr frameOf(Addr vpn);

    /** Pages allocated so far. */
    std::uint64_t allocatedPages() const { return nextIndex; }

  private:
    /** Frames per 4 GB core zone. */
    static constexpr std::uint64_t kZoneFrames =
        (std::uint64_t{1} << 32) / kPageBytes;

    Addr zoneBase;
    std::uint64_t key;
    std::uint64_t nextIndex = 0;
    std::unordered_map<Addr, Addr> vpnToPpn;
};

} // namespace garibaldi

#endif // GARIBALDI_CORE_PAGE_TABLE_HH
