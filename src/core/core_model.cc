#include "core/core_model.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace garibaldi
{

CoreModel::CoreModel(CoreId core, const CoreParams &params_,
                     MemoryHierarchy &hierarchy, std::uint64_t seed)
    : coreId(core), params(params_), mem(hierarchy),
      pt(core, mix64(seed ^ (0x517cc1b7 + core))),
      tlb(params_.tlb),
      rng(seed ^ 0xdeadbeef, core + 1)
{
    if (params.issueWidth == 0)
        fatal("issue width must be non-zero");
}

void
CoreModel::charge(CpiComponent c, Cycle n)
{
    if (n == 0)
        return;
    cycle += n;
    stat.cpi.charge(c, n);
}

CpiComponent
CoreModel::fetchComponent(HitLevel level) const
{
    switch (level) {
      case HitLevel::L2:
        return CpiComponent::IFetchL2;
      case HitLevel::LLC:
        return CpiComponent::IFetchLLC;
      default:
        return CpiComponent::IFetchMem;
    }
}

CpiComponent
CoreModel::dataComponent(HitLevel level) const
{
    switch (level) {
      case HitLevel::L2:
        return CpiComponent::DataL2;
      case HitLevel::LLC:
        return CpiComponent::DataLLC;
      default:
        return CpiComponent::DataMem;
    }
}

void
CoreModel::chargeFetch(const MicroOp &op)
{
    Addr fetch_line = lineAlign(op.pc);
    if (fetch_line == lastFetchLine)
        return; // same-line fetches ride the existing fetch
    lastFetchLine = fetch_line;
    ++stat.ifetchLines;

    charge(CpiComponent::Itlb, tlb.accessInstr(pageNumber(op.pc)));

    MemAccess acc;
    acc.core = coreId;
    acc.pc = op.pc;
    acc.paddr = pt.translate(fetch_line);
    acc.isInstr = true;
    Transaction txn(acc, cycle);
    mem.execute(txn);
    if (txn.level == HitLevel::L1)
        return; // L1I hits are covered by the base pipeline

    // Frontend stalls are serial: the pipeline cannot run ahead of the
    // fetch, so the full latency is exposed minus the decoupled fetch
    // buffer's slack.
    Cycle latency = txn.latency();
    Cycle stall = latency > params.fetchHideCycles
                      ? latency - params.fetchHideCycles : 0;
    charge(fetchComponent(txn.level), stall);
}

void
CoreModel::chargeData(const MicroOp &op)
{
    charge(CpiComponent::Dtlb, tlb.accessData(pageNumber(op.vaddr)));

    MemAccess acc;
    acc.core = coreId;
    acc.pc = op.pc;
    acc.paddr = pt.translate(op.vaddr);
    acc.isInstr = false;
    acc.isWrite = op.mem == MicroOp::MemKind::Store;
    Transaction txn(acc, cycle);
    mem.execute(txn);
    if (txn.level == HitLevel::L1)
        return; // L1 hit latency is part of the base pipeline

    Cycle latency = txn.latency();
    if (acc.isWrite) {
        // Stores retire through the store buffer; only sustained miss
        // pressure leaks into the commit stage.
        Cycle stall = static_cast<Cycle>(
            static_cast<double>(latency) * params.storeCostFraction);
        charge(CpiComponent::Store, stall);
        return;
    }

    // Load miss: model memory-level parallelism.  Misses issued while a
    // previous miss is outstanding overlap with it unless the load is
    // (statistically) dependent on that miss.
    Cycle done = cycle + latency;
    Cycle stall;
    if (cycle < missShadowEnd) {
        if (rng.chance(params.dependentLoadFraction)) {
            stall = latency; // serialized behind the older miss
            missShadowEnd += latency;
        } else {
            stall = done > missShadowEnd ? done - missShadowEnd : 0;
            missShadowEnd = std::max(missShadowEnd, done);
        }
    } else {
        // Lone miss: the ROB hides a window of independent work.
        stall = latency > params.robSlackCycles
                    ? latency - params.robSlackCycles : 0;
        missShadowEnd = done;
    }
    charge(dataComponent(txn.level), stall);
}

void
CoreModel::step(const MicroOp &op)
{
    ++stat.instructions;
    if (++subcycle >= params.issueWidth) {
        subcycle = 0;
        ++cycle;
        stat.cpi.charge(CpiComponent::Base, 1);
    }

    chargeFetch(op);

    if (op.isBranch) {
        ++stat.branches;
        bool mispredicted;
        if (op.isIndirect) {
            Addr predicted = bp.predictIndirect(op.pc);
            mispredicted = predicted != op.branchTarget;
            bp.updateIndirect(op.pc, op.branchTarget);
        } else {
            bool predicted = bp.predict(op.pc);
            mispredicted = predicted != op.branchTaken;
            bp.update(op.pc, op.branchTaken);
        }
        if (mispredicted) {
            ++stat.mispredicts;
            charge(CpiComponent::Branch, params.mispredictPenalty);
            // The flush refetches the current path.
            lastFetchLine = ~Addr{0};
        }
    }

    if (op.mem == MicroOp::MemKind::Load) {
        ++stat.loads;
        chargeData(op);
    } else if (op.mem == MicroOp::MemKind::Store) {
        ++stat.stores;
        chargeData(op);
    }
}

void
CoreModel::resetStats()
{
    stat = CoreStats{};
    windowStart = cycle;
}

} // namespace garibaldi
