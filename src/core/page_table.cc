#include "core/page_table.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace garibaldi
{

PageTable::PageTable(CoreId core, std::uint64_t scatter_key)
    : zoneBase((Addr{core} + 1) * kZoneFrames), key(scatter_key)
{
    if ((zoneBase + kZoneFrames) * kPageBytes > (Addr{1} << kPhysAddrBits))
        fatal("core ", core, " physical zone exceeds the 44-bit space");
}

Addr
PageTable::frameOf(Addr vpn)
{
    auto it = vpnToPpn.find(vpn);
    if (it != vpnToPpn.end())
        return it->second;
    if (nextIndex >= kZoneFrames)
        fatal("core physical zone exhausted (", nextIndex, " pages)");
    Addr ppn = zoneBase + feistelPermute(nextIndex++, kZoneFrames, key);
    vpnToPpn.emplace(vpn, ppn);
    return ppn;
}

Addr
PageTable::translate(Addr vaddr)
{
    Addr ppn = frameOf(pageNumber(vaddr));
    return (ppn << kPageShift) | pageOffset(vaddr);
}

} // namespace garibaldi
